//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Implements the subset the fpva workspace uses: [`RngCore`],
//! [`SeedableRng`], [`Rng::gen_range`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed, statistically solid for test
//! workloads, but NOT the same stream as upstream `StdRng` (ChaCha12).

/// Low-level source of random 32/64-bit words. Object-safe.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style unbiased bounded sample via rejection.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                if s == 0 && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                // Widen in u64: `e - s + 1` cannot overflow here because the
                // full-domain case above was already handled.
                let span = (e - s) as u64 + 1;
                s + ((0..span).sample_single(rng)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let off = (0..span as u64).sample_single(rng) as $u;
                (self.start as $u).wrapping_add(off) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i32 => u32, i64 => u64, isize => usize);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Same trait surface; different (but fixed) stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice extensions: in-place Fisher–Yates shuffle and element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly pick a reference, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..(i + 1) as u64).sample_single_u64(rng) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (0..self.len() as u64).sample_single_u64(rng) as usize;
                Some(&self[i])
            }
        }
    }

    trait SampleSingleU64 {
        fn sample_single_u64<R: RngCore + ?Sized>(self, rng: &mut R) -> u64;
    }

    impl SampleSingleU64 for core::ops::Range<u64> {
        fn sample_single_u64<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
            use super::SampleRange;
            self.sample_single(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_ranges_reaching_type_max_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let v: u8 = rng.gen_range(250..=u8::MAX);
            assert!(v >= 250);
            let w: u64 = rng.gen_range(1..=u64::MAX);
            assert!(w >= 1);
            let full: u16 = rng.gen_range(0..=u16::MAX);
            let _ = full;
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn super::RngCore = &mut rng;
        let mut v = [1, 2, 3, 4];
        v.shuffle(dyn_rng);
    }
}
