//! Differential tests for the bit-parallel simulation kernel: the
//! word-parallel bitset BFS must reproduce the scalar oracle's campaign
//! rows **byte for byte** — same detections, same escapes, same order —
//! on every Table I layout and on the multi-sink example chip, for every
//! lane packing (trial counts off the 64-lane boundary included).
//!
//! The fast tests here run on every `cargo test`; the full five-layout
//! sweep is `#[ignore]`d (plan generation on the large arrays dominates
//! debug runs) and exercised in release by CI via `--include-ignored`.

use fpva::sim::campaign::{self, CampaignConfig};
use fpva::{layouts, Atpg, CampaignRow, Fpva, SimKernel, TestSuite};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The 5x5 Table I array with its generated suite, built once — plan
/// generation dominates the edge-case tests otherwise.
fn planned_5x5() -> &'static (Fpva, TestSuite) {
    static PLANNED: OnceLock<(Fpva, TestSuite)> = OnceLock::new();
    PLANNED.get_or_init(|| {
        let fpva = layouts::table1_5x5();
        let suite = Atpg::new()
            .generate(&fpva)
            .expect("5x5 plan generates")
            .to_suite(&fpva);
        (fpva, suite)
    })
}

/// Runs the same campaign under both kernels and asserts row equality.
fn assert_kernels_agree(fpva: &Fpva, suite: &TestSuite, base: &CampaignConfig) -> Vec<CampaignRow> {
    let with_kernel = |kernel| CampaignConfig {
        kernel,
        ..base.clone()
    };
    let scalar = campaign::run(fpva, suite, &with_kernel(SimKernel::Scalar));
    let bit = campaign::run(fpva, suite, &with_kernel(SimKernel::BitParallel));
    assert_eq!(
        scalar, bit,
        "bit-parallel rows diverged from the scalar oracle"
    );
    scalar
}

/// Plans a suite and checks scalar/bit row equality on one layout.
fn differential_on(name: &str, fpva: &Fpva, trials: usize) {
    let suite = Atpg::new()
        .generate(fpva)
        .unwrap_or_else(|e| panic!("{name}: plan generates: {e}"))
        .to_suite(fpva);
    let config = CampaignConfig {
        trials,
        fault_counts: vec![1, 3],
        seed: 0x1eaf_5eed ^ trials as u64,
        threads: 1,
        ..Default::default()
    };
    let rows = assert_kernels_agree(fpva, &suite, &config);
    assert_eq!(rows.len(), 2, "{name}: one row per fault count");
    for row in &rows {
        assert_eq!(row.trials, trials, "{name}");
    }
}

#[test]
fn rows_match_scalar_oracle_on_small_table1_layouts() {
    differential_on("5x5", &layouts::table1_5x5(), 70);
    differential_on("10x10", &layouts::table1_10x10(), 40);
}

#[test]
fn rows_match_scalar_oracle_on_multi_sink_biochip() {
    // The irregular multi-sink chip: channels, an obstacle, sinks on two
    // different edges — exercises multi-seed forward floods and the
    // multi-port response comparison per lane.
    differential_on("custom_biochip", &layouts::custom_biochip(), 70);
}

/// The full Table I sweep, 30x30 included. Run by CI in release mode
/// (`cargo test --release --test bitsim_differential -- --include-ignored`).
#[test]
#[ignore = "plan generation on the large arrays dominates debug runs; CI runs it in release"]
fn rows_match_scalar_oracle_on_all_table1_layouts() {
    for entry in layouts::table1() {
        differential_on(entry.name, &entry.fpva, 70);
    }
}

#[test]
fn lane_packing_edge_cases_match_scalar_oracle() {
    let (fpva, suite) = planned_5x5();
    // 63/65/70 straddle the 64-lane word boundary, so the trailing block
    // of each row is partial; 64 is exactly one full word (live mask all
    // ones); 1 is a single-lane block.
    for trials in [1, 63, 64, 65, 70] {
        let config = CampaignConfig {
            trials,
            fault_counts: vec![2],
            seed: 7,
            threads: 1,
            ..Default::default()
        };
        let rows = assert_kernels_agree(fpva, suite, &config);
        assert_eq!(rows[0].trials, trials);
    }
}

#[test]
fn empty_universe_is_undefined_under_the_bit_kernel() {
    let (fpva, suite) = planned_5x5();
    let config = CampaignConfig {
        trials: 0,
        fault_counts: vec![1],
        kernel: SimKernel::BitParallel,
        ..Default::default()
    };
    let rows = campaign::run(fpva, suite, &config);
    assert_eq!(rows[0].detection_rate(), None, "zero trials is a no-op");
    assert_eq!(rows[0].detected, 0);
    assert!(rows[0].escapes.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // For arbitrary seeds (hence arbitrary fault mixes, control leaks
    // included) and a trial count off the lane boundary, the kernels
    // agree row for row — and stay thread-count invariant on top.
    #[test]
    fn kernels_agree_for_any_seed(seed in any::<u64>()) {
        let (fpva, suite) = planned_5x5();
        let config = |threads| CampaignConfig {
            trials: 45,
            fault_counts: vec![1, 2],
            seed,
            threads,
            ..Default::default()
        };
        let serial = assert_kernels_agree(fpva, suite, &config(1));
        let pooled = assert_kernels_agree(fpva, suite, &config(4));
        prop_assert_eq!(serial, pooled);
    }
}
