//! End-to-end integration: generate plans for the paper's benchmark
//! arrays and audit them with the simulator.

use fpva::sim::audit;
use fpva::{layouts, Atpg};

#[test]
fn table1_valve_counts_match_paper() {
    let expected = [39, 176, 411, 744, 1704];
    for (entry, &nv) in layouts::table1().iter().zip(&expected) {
        assert_eq!(entry.fpva.valve_count(), nv, "{}", entry.name);
    }
}

#[test]
fn plans_leave_no_untestable_faults_on_benchmark_arrays() {
    // Limit to the two smallest arrays to keep debug-profile runtime sane;
    // the bench binaries exercise the full set in release mode.
    for entry in layouts::table1().into_iter().take(2) {
        let plan = Atpg::new().generate(&entry.fpva).unwrap();
        assert!(plan.untestable_open().is_empty(), "{}", entry.name);
        assert!(plan.untestable_closed().is_empty(), "{}", entry.name);
        // The only permissible leftovers are leak pairs that are
        // *certified* untestable (the port-less corner pockets).
        for &(a, b) in plan.untestable_pairs() {
            assert!(
                fpva::atpg::leakage::pair_untestable(&entry.fpva, a, b),
                "{}: pair ({a},{b}) left uncovered without certificate",
                entry.name
            );
        }
    }
}

#[test]
fn cut_counts_match_table1_on_all_arrays() {
    for entry in layouts::table1() {
        let cuts = fpva::atpg::cutset::straight_line_cuts(&entry.fpva).unwrap();
        assert_eq!(cuts.len(), entry.paper_cut_sets, "{}", entry.name);
    }
}

#[test]
fn cut_set_counts_follow_dimension_formula() {
    // Table I's n_c column is exactly the straight grid lines of each
    // array: (m-1) vertical + (n-1) horizontal — tie the stored paper
    // constants to the dimensions rather than trusting them in isolation.
    for entry in layouts::table1() {
        let (m, n) = (entry.fpva.rows(), entry.fpva.cols());
        assert_eq!(
            entry.paper_cut_sets,
            (m - 1) + (n - 1),
            "{}: cut-set count must be (m-1)+(n-1)",
            entry.name
        );
    }
}

#[test]
fn plans_yield_nonempty_suites_on_small_arrays() {
    for entry in layouts::table1().into_iter().take(3) {
        let plan = Atpg::new().generate(&entry.fpva).unwrap();
        let suite = plan.to_suite(&entry.fpva);
        assert!(!suite.is_empty(), "{}: empty suite", entry.name);
        assert_eq!(suite.len(), plan.vector_count(), "{}", entry.name);
    }
}

#[test]
#[ignore = "debug-profile runtime is unreasonable; run with `cargo test --release -- --ignored`"]
fn plans_yield_nonempty_suites_on_large_arrays() {
    for entry in layouts::table1().into_iter().skip(3) {
        let plan = Atpg::new().generate(&entry.fpva).unwrap();
        let suite = plan.to_suite(&entry.fpva);
        assert!(!suite.is_empty(), "{}: empty suite", entry.name);
        assert_eq!(suite.len(), plan.vector_count(), "{}", entry.name);
    }
}

#[test]
fn full_single_fault_coverage_5x5() {
    let fpva = layouts::table1_5x5();
    let plan = Atpg::new().generate(&fpva).unwrap();
    let suite = plan.to_suite(&fpva);
    let stuck = audit::single_fault_coverage(&fpva, &suite);
    assert!(
        stuck.is_complete(),
        "stuck-at escapes: {:?}",
        stuck.undetected
    );
    // Every adjacent leak pair is caught except the four physically
    // untestable corner-pocket pairs.
    let leaks = audit::leak_coverage(&fpva, &suite);
    assert_eq!(
        leaks.undetected.len(),
        4,
        "leak escapes: {:?}",
        leaks.undetected
    );
    for fault in &leaks.undetected {
        let fpva::Fault::ControlLeak { actuator, victim } = fault else {
            panic!("unexpected fault kind {fault:?}")
        };
        assert!(fpva::atpg::leakage::pair_untestable(
            &fpva, *actuator, *victim
        ));
    }
}

#[test]
fn full_single_fault_coverage_10x10() {
    let fpva = layouts::table1_10x10();
    let plan = Atpg::new().generate(&fpva).unwrap();
    let suite = plan.to_suite(&fpva);
    let stuck = audit::single_fault_coverage(&fpva, &suite);
    assert!(
        stuck.is_complete(),
        "stuck-at escapes: {:?}",
        stuck.undetected
    );
}

#[test]
fn two_fault_guarantee_exhaustive_5x5() {
    // The paper guarantees detection of any two faults; check every
    // (stuck-at-0, stuck-at-1) pair on the 5x5 array (39*38 pairs).
    let fpva = layouts::table1_5x5();
    let plan = Atpg::new().generate(&fpva).unwrap();
    let suite = plan.to_suite(&fpva);
    // threads: 2 exercises the worker pool in the tier-1 run; the report
    // is identical for every thread count.
    let report = audit::two_fault_audit(&fpva, &suite, 2);
    assert!(
        report.is_complete(),
        "masked pairs: {:?}",
        report.undetected
    );
}

#[test]
fn two_fault_sampled_15x15() {
    let fpva = layouts::table1_15x15();
    let plan = Atpg::new().generate(&fpva).unwrap();
    let suite = plan.to_suite(&fpva);
    let report = audit::two_fault_audit_sampled(&fpva, &suite, 400, 21);
    assert!(
        report.is_complete(),
        "masked pairs: {:?}",
        report.undetected
    );
}

#[test]
fn random_campaign_catches_everything_on_5x5() {
    use fpva::sim::campaign::{self, CampaignConfig};
    let fpva = layouts::table1_5x5();
    let plan = Atpg::new().generate(&fpva).unwrap();
    let suite = plan.to_suite(&fpva);
    let config = CampaignConfig {
        trials: 500,
        ..Default::default()
    };
    for row in campaign::run(&fpva, &suite, &config) {
        assert!(
            row.all_detected(),
            "{} escapes at {} faults: {:?}",
            row.trials - row.detected,
            row.fault_count,
            row.escapes.first()
        );
    }
}

#[test]
fn proposed_is_an_order_of_magnitude_below_baseline() {
    for entry in layouts::table1().into_iter().take(3) {
        let plan = Atpg::new().generate(&entry.fpva).unwrap();
        let baseline = fpva::atpg::baseline::baseline_vector_count(&entry.fpva);
        assert!(
            plan.vector_count() * 3 < baseline,
            "{}: N={} vs baseline {}",
            entry.name,
            plan.vector_count(),
            baseline
        );
    }
}

#[test]
#[ignore = "release-only exact-ILP probe; run with `cargo test --release -- --ignored`"]
fn channelled_5x5_k2_infeasibility_proof_fits_the_probe_budget() {
    // The tentpole claim of the sparse-LU basis (PR 5): on the channelled
    // Table I 5×5, the first exact-ILP feasibility probe (k = 2, the
    // paper's lower bound) is *proven infeasible* inside the default 20s
    // budget instead of burning it — the product-form eta engine of PR 4
    // limited out on every one of its 7 probes. Capping `max_paths` at 2
    // isolates exactly that probe: the result must be a definite "no
    // cover with ≤ 2 paths", with zero limit hits.
    use fpva::atpg::ilp_model::{min_path_cover_ilp_with_stats, PathIlpConfig};
    let f = layouts::table1_5x5();
    let config = PathIlpConfig {
        max_paths: 2,
        ..PathIlpConfig::default()
    };
    let (res, stats) = min_path_cover_ilp_with_stats(&f, &config);
    assert!(res.is_err(), "no 2-path cover exists on the channelled 5x5");
    assert_eq!(stats.probes, 1, "exactly the k=2 probe runs");
    assert_eq!(
        stats.limit_probes, 0,
        "the k=2 infeasibility must be proven, not budget-limited"
    );
    assert_eq!(
        stats.limit_nodes, 0,
        "no node may be pruned unproven in an infeasibility proof"
    );
    assert!(
        stats.ft_updates > 0 && stats.refactorizations > 0,
        "the proof must have exercised the LU basis (ft={}, refacts={})",
        stats.ft_updates,
        stats.refactorizations
    );
}

#[test]
#[ignore = "release-only exact-ILP probe; run with `cargo test --release -- --ignored`"]
fn unchannelled_5x5_exact_cover_still_solves_in_budget() {
    // PR 4's un-channelled milestone must not regress under the LU
    // engine: the 5×5 exact cover solves with zero limit hits (measured
    // ~0.6s against PR 4's ~10s; the 20s probe budget is the guard).
    use fpva::atpg::ilp_model::{min_path_cover_ilp_with_stats, PathIlpConfig};
    let f = layouts::full_array(5, 5);
    let (res, stats) = min_path_cover_ilp_with_stats(&f, &PathIlpConfig::default());
    let cover = res.expect("5x5 exact cover solves inside the probe budget");
    assert_eq!(cover.paths.len(), 2, "two serpentine-like paths suffice");
    assert_eq!(stats.limit_probes, 0);
}

#[test]
#[ignore = "release-only exact-ILP probe; run with `cargo test --release -- --ignored`"]
fn unchannelled_5x5_dual_warm_resolves_shrink_the_search_tree() {
    // The dual-simplex tentpole claim (PR 9): child nodes re-solve
    // dually from the parent basis instead of restarting primal
    // phase 1, and on the un-channelled 5×5 exact cover that shrinks
    // the branch-and-bound tree below the primal-only engine's 91
    // nodes (measured: 74 nodes, ~1.1k dual pivots, every child a warm
    // resolve, zero rejected warm bases).
    use fpva::atpg::ilp_model::{min_path_cover_ilp_with_stats, PathIlpConfig};
    let f = layouts::full_array(5, 5);
    let (res, stats) = min_path_cover_ilp_with_stats(&f, &PathIlpConfig::default());
    let cover = res.expect("5x5 exact cover solves inside the probe budget");
    assert_eq!(cover.paths.len(), 2);
    assert!(
        stats.dual_pivots > 0,
        "child re-solves must exercise the dual simplex (dual_pivots = 0)"
    );
    assert!(
        stats.warm_resolves > 0,
        "every child node should warm-start from its parent basis"
    );
    assert_eq!(
        stats.cold_restarts, 0,
        "no warm basis may be silently rejected into a cold restart"
    );
    assert!(
        stats.nodes < 91,
        "the dual warm path must beat the primal-only 91-node tree, got {}",
        stats.nodes
    );
}

#[test]
#[ignore = "release-only exact-ILP probe; run with `cargo test --release -- --ignored`"]
fn channelled_5x5_k3_probe_is_still_open() {
    // The honest frontier pin (PR 10): the channelled table1_5x5 cover
    // model at k = 3 is *undecided* within a 10k-node budget, and the
    // root static analysis explains why none of its levers bite there —
    // the channel placement breaks every lattice automorphism (zero
    // verified generators, so orbit branching has nothing to act on)
    // and the conflict graph is near-empty (a handful of corner-cell
    // edges on ~130 binaries). If a future change decides this probe,
    // this test fails on purpose: update it and the ROADMAP frontier
    // entry together. Measured at PR 10: k = 3 runs past 61k nodes in
    // 120 s without a verdict.
    use fpva::ilp::{MilpOptions, MilpSolver, SolveStatus};
    let f = layouts::table1_5x5();
    let model = fpva::atpg::ilp_model::cover_model(&f, 3);
    let symmetry = fpva::atpg::ilp_model::symmetry_generators(&f, 3);
    assert!(
        symmetry.is_empty(),
        "the channelled 5x5 unexpectedly verified {} symmetry generator(s) — \
         orbit branching may now apply; revisit the ROADMAP frontier entry",
        symmetry.len()
    );
    let out = MilpSolver::with_options(MilpOptions {
        stop_at_first: true,
        node_limit: Some(10_000),
        symmetry,
        ..MilpOptions::default()
    })
    .solve(&model)
    .expect("the probe itself must not error");
    assert!(
        out.stats.analysis.conflict_edges < 20,
        "the conflict graph grew to {} edges — dense enough to revisit \
         clique cuts on this instance",
        out.stats.analysis.conflict_edges
    );
    assert_eq!(
        out.status,
        SolveStatus::Unknown,
        "table1_5x5 k=3 decided as {:?} within 10k nodes — the open \
         frontier entry in ROADMAP.md is stale, rewrite it",
        out.status
    );
}
