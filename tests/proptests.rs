//! Property-based tests on the core invariants.

use fpva::atpg::cutset::straight_line_cuts;
use fpva::atpg::heuristic::greedy_cover;
use fpva::grid::{PortKind, Side};
use fpva::sim::{propagate, respond, FaultSet};
use fpva::{FpvaBuilder, TestVector, ValveId, ValveState};
use proptest::prelude::*;

/// Random small layout: dimensions, optional channel, optional obstacle,
/// corner ports. Built so that ports never collide with the obstacle.
fn arb_layout() -> impl Strategy<Value = fpva::Fpva> {
    (
        3usize..7,
        3usize..7,
        any::<bool>(),
        any::<bool>(),
        0usize..100,
    )
        .prop_map(|(rows, cols, with_channel, with_obstacle, salt)| {
            let mut b = FpvaBuilder::new(rows, cols);
            let channel_row = 1 + salt % (rows - 2);
            if with_channel {
                b = b.channel_horizontal(channel_row, 0, cols - 2);
            }
            // Interior 1x1 obstacle, skipped when it would collide with
            // the channel row.
            if with_obstacle && rows >= 5 && cols >= 5 && !(with_channel && channel_row == rows - 2)
            {
                b = b.obstacle(rows - 2, cols - 2, rows - 2, cols - 2);
            }
            b.port(0, 0, Side::West, PortKind::Source)
                .port(rows - 1, cols - 1, Side::East, PortKind::Sink)
                .build()
                .expect("constructed layouts are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_paths_are_simple_and_connected(fpva in arb_layout()) {
        let cover = greedy_cover(&fpva, 11, 48).unwrap();
        for path in &cover.paths {
            let unique: std::collections::HashSet<_> = path.cells().iter().collect();
            prop_assert_eq!(unique.len(), path.len());
            for pair in path.cells().windows(2) {
                prop_assert!(fpva.edge_between(pair[0], pair[1]).is_some());
            }
            // The path vector really delivers pressure to a sink.
            let r = respond(&fpva, &path.to_vector(&fpva), &FaultSet::new());
            prop_assert!(r.any_pressure());
        }
    }

    #[test]
    fn cut_vectors_always_silence_the_meters(fpva in arb_layout()) {
        for cut in straight_line_cuts(&fpva).unwrap() {
            let r = respond(&fpva, &cut.to_vector(&fpva), &FaultSet::new());
            prop_assert!(!r.any_pressure());
        }
    }

    #[test]
    fn opening_more_valves_never_removes_pressure(
        fpva in arb_layout(),
        opens in proptest::collection::vec(0usize..1000, 0..20),
        extra in 0usize..1000,
    ) {
        let nv = fpva.valve_count();
        prop_assume!(nv > 0);
        let mut vector = TestVector::all_closed(nv);
        for o in opens {
            vector.set(ValveId(o % nv), ValveState::Open);
        }
        let before = propagate(&fpva, &vector, &FaultSet::new());
        let mut wider = vector.clone();
        wider.set(ValveId(extra % nv), ValveState::Open);
        let after = propagate(&fpva, &wider, &FaultSet::new());
        for cell in fpva.cells() {
            prop_assert!(!before.at(cell) || after.at(cell), "pressure lost at {cell}");
        }
    }

    #[test]
    fn fault_free_chip_never_fails_its_own_suite(fpva in arb_layout()) {
        let cover = greedy_cover(&fpva, 5, 32).unwrap();
        let mut vectors: Vec<TestVector> =
            cover.paths.iter().map(|p| p.to_vector(&fpva)).collect();
        vectors.extend(straight_line_cuts(&fpva).unwrap().iter().map(|c| c.to_vector(&fpva)));
        let suite = fpva::TestSuite::new(&fpva, vectors);
        prop_assert!(!suite.detects(&fpva, &FaultSet::new()));
    }

    #[test]
    fn single_stuck_faults_on_covered_valves_are_detected(fpva in arb_layout()) {
        use fpva::atpg::cutset::cut_cover;
        use fpva::Fault;
        let cover = greedy_cover(&fpva, 5, 48).unwrap();
        let cuts = cut_cover(&fpva).unwrap();
        let mut vectors: Vec<TestVector> =
            cover.paths.iter().map(|p| p.to_vector(&fpva)).collect();
        vectors.extend(cuts.cuts.iter().map(|c| c.to_vector(&fpva)));
        let suite = fpva::TestSuite::new(&fpva, vectors);
        for (v, _) in fpva.valves() {
            let path_covered = cover.paths.iter().any(|p| p.covers(&fpva, v));
            if path_covered {
                let f = FaultSet::try_from_faults(vec![Fault::StuckAt0(v)]).unwrap();
                prop_assert!(suite.detects(&fpva, &f), "stuck-at-0 {v} escaped");
            }
            // cut_cover reports exposure, not mere membership: every valve
            // it does not list as uncovered must have a detectable
            // stuck-at-1.
            if !cuts.uncovered.contains(&v) {
                let f = FaultSet::try_from_faults(vec![Fault::StuckAt1(v)]).unwrap();
                prop_assert!(suite.detects(&fpva, &f), "stuck-at-1 {v} escaped");
            }
        }
    }
}
