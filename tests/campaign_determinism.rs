//! The campaign engine's determinism contract, end to end: for a fixed
//! seed the rows are a pure function of `(chip, suite, config)` —
//! independent of the thread count, of the ordering of `fault_counts`,
//! and of subsetting. Also covers the multi-sink campaign smoke case and
//! the explicit empty-universe reporting.

use fpva::grid::{PortKind, Side};
use fpva::sim::audit;
use fpva::sim::campaign::{self, CampaignConfig};
use fpva::{layouts, Atpg, CampaignRow, CoverageReport, Fault, Fpva, TestSuite};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The 5x5 Table I array with its generated suite, built once — plan
/// generation dominates these tests otherwise.
fn planned_5x5() -> &'static (Fpva, TestSuite) {
    static PLANNED: OnceLock<(Fpva, TestSuite)> = OnceLock::new();
    PLANNED.get_or_init(|| {
        let fpva = layouts::table1_5x5();
        let suite = Atpg::new()
            .generate(&fpva)
            .expect("5x5 plan generates")
            .to_suite(&fpva);
        (fpva, suite)
    })
}

/// The multi-sink chip of `examples/custom_biochip`: transport channels,
/// a 2x2 obstacle, one source and two sinks on different edges.
fn custom_biochip() -> Fpva {
    fpva::FpvaBuilder::new(12, 12)
        .channel_horizontal(2, 1, 6)
        .channel_vertical(9, 4, 8)
        .obstacle(6, 3, 7, 4)
        .port(0, 0, Side::West, PortKind::Source)
        .port(11, 11, Side::East, PortKind::Sink)
        .port(11, 0, Side::South, PortKind::Sink)
        .build()
        .expect("example layout is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rows_are_thread_count_invariant_for_any_seed(seed in any::<u64>()) {
        let (fpva, suite) = planned_5x5();
        let config = |threads| CampaignConfig {
            trials: 72, // spans several trial chunks
            fault_counts: vec![1, 3],
            seed,
            threads,
            ..Default::default()
        };
        let serial = campaign::run(fpva, suite, &config(1));
        let pooled = campaign::run(fpva, suite, &config(8));
        prop_assert_eq!(serial, pooled);
    }

    #[test]
    fn rows_are_fault_count_order_invariant_for_any_seed(seed in any::<u64>()) {
        let (fpva, suite) = planned_5x5();
        let config = |fault_counts| CampaignConfig {
            trials: 30,
            fault_counts,
            seed,
            threads: 2,
            ..Default::default()
        };
        let forward = campaign::run(fpva, suite, &config(vec![1, 2]));
        let reversed = campaign::run(fpva, suite, &config(vec![2, 1]));
        prop_assert_eq!(&forward[0], &reversed[1]);
        prop_assert_eq!(&forward[1], &reversed[0]);
    }
}

#[test]
fn multi_sink_campaign_smoke() {
    let fpva = custom_biochip();
    let suite = Atpg::new()
        .generate(&fpva)
        .expect("custom biochip plan generates")
        .to_suite(&fpva);
    let config = |threads| CampaignConfig {
        trials: 60,
        fault_counts: vec![1, 2],
        threads,
        ..Default::default()
    };
    let rows = campaign::run(&fpva, &suite, &config(4));
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert_eq!(row.trials, 60);
        assert!(row.detected <= row.trials);
        assert!(row.escapes.len() <= campaign::MAX_RECORDED_ESCAPES);
        // The generated suite catches most random faults even on this
        // irregular chip (some valves are reported untestable, so 100% is
        // not guaranteed the way it is on the full arrays).
        assert!(
            row.detection_rate().expect("trials ran") > 0.5,
            "suspiciously low detection at {} faults: {}/{}",
            row.fault_count,
            row.detected,
            row.trials
        );
    }
    assert_eq!(rows, campaign::run(&fpva, &suite, &config(1)));
}

#[test]
fn two_fault_audit_is_thread_count_invariant_end_to_end() {
    let (fpva, suite) = planned_5x5();
    let serial = audit::two_fault_audit(fpva, suite, 1);
    assert_eq!(serial.total, 39 * 38);
    for threads in [2, 8] {
        assert_eq!(audit::two_fault_audit(fpva, suite, threads), serial);
    }
}

#[test]
fn empty_universes_are_reported_explicitly() {
    let empty_row = CampaignRow {
        fault_count: 1,
        trials: 0,
        detected: 0,
        escapes: vec![],
    };
    assert_eq!(empty_row.detection_rate(), None);
    let empty_report: CoverageReport<Fault> = CoverageReport {
        total: 0,
        undetected: vec![],
        stats: fpva::KernelStats::default(),
    };
    assert_eq!(empty_report.coverage(), None);

    // A zero-trial campaign is a no-op, not a "fully detected" claim.
    let (fpva, suite) = planned_5x5();
    let rows = campaign::run(
        fpva,
        suite,
        &CampaignConfig {
            trials: 0,
            fault_counts: vec![1],
            threads: 4,
            ..Default::default()
        },
    );
    assert_eq!(rows[0].detection_rate(), None);
    assert_eq!(rows[0].detected, 0);
}
