//! Simulation-backed semantics of the generated vectors: each flow-path
//! vector must expose a stuck-at-0 on *every* valve it claims to cover,
//! and each cut vector a stuck-at-1 on every cut valve — on the real
//! benchmark layouts including channels and obstacles.

use fpva::sim::{respond, Fault, FaultSet};
use fpva::{layouts, Atpg};

#[test]
fn every_path_vector_exposes_each_of_its_valves() {
    for entry in layouts::table1().into_iter().take(2) {
        let f = &entry.fpva;
        let plan = Atpg::new().generate(f).unwrap();
        for path in plan.flow_paths().iter().chain(plan.leakage_paths()) {
            let vector = path.to_vector(f);
            let golden = respond(f, &vector, &FaultSet::new());
            assert!(
                golden.any_pressure(),
                "{}: path vector delivers no pressure",
                entry.name
            );
            for valve in path.valves(f) {
                let fault = FaultSet::try_from_faults(vec![Fault::StuckAt0(valve)]).unwrap();
                assert_ne!(
                    respond(f, &vector, &fault),
                    golden,
                    "{}: stuck-at-0 at {valve} invisible on its own path vector",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn every_cut_vector_exposes_each_of_its_valves_on_5x5() {
    let f = layouts::table1_5x5();
    let plan = Atpg::new().generate(&f).unwrap();
    let mut exposed = vec![false; f.valve_count()];
    for cut in plan.cut_sets() {
        let vector = cut.to_vector(&f);
        let golden = respond(&f, &vector, &FaultSet::new());
        assert!(
            !golden.any_pressure(),
            "cut vector leaks on a fault-free chip"
        );
        for &valve in cut.valves() {
            let fault = FaultSet::try_from_faults(vec![Fault::StuckAt1(valve)]).unwrap();
            if respond(&f, &vector, &fault) != golden {
                exposed[valve.index()] = true;
            }
        }
    }
    // Every valve's stuck-at-1 must be exposed by at least one cut vector
    // (not necessarily every cut containing it: a cut may close a valve
    // redundantly, e.g. via the constraint-(9) repair).
    let missing: Vec<usize> = (0..f.valve_count()).filter(|&i| !exposed[i]).collect();
    assert!(
        missing.is_empty(),
        "stuck-at-1 not exposed for valves {missing:?}"
    );
}

#[test]
fn channel_cells_do_not_mask_path_faults_on_20x20() {
    // The 20x20 layout has both channel orientations; this is the
    // regression test for the channel-bypass masking bug (a path visiting
    // a channel component twice is invalid).
    let f = layouts::table1_20x20();
    let plan = Atpg::new().generate(&f).unwrap();
    for path in plan.flow_paths() {
        let vector = path.to_vector(&f);
        let golden = respond(&f, &vector, &FaultSet::new());
        for valve in path.valves(&f) {
            let fault = FaultSet::try_from_faults(vec![Fault::StuckAt0(valve)]).unwrap();
            assert_ne!(
                respond(&f, &vector, &fault),
                golden,
                "stuck-at-0 at {valve} masked by a channel bypass"
            );
        }
    }
}
