//! Quickstart: generate a test plan for a Table I array, print its
//! composition, and verify a couple of faults end-to-end.
//!
//! Run with `cargo run --release --example quickstart`.

use fpva::sim::{respond, Fault, FaultSet};
use fpva::{layouts, Atpg, ValveId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 10x10 benchmark array of the paper's Table I: 176 valves, one
    // transportation channel, source in the top-left corner, pressure
    // meter in the bottom-right corner.
    let fpva = layouts::table1_10x10();
    println!(
        "array: {}x{} with {} valves, {} source(s), {} sink(s)",
        fpva.rows(),
        fpva.cols(),
        fpva.valve_count(),
        fpva.sources().count(),
        fpva.sinks().count()
    );

    // Generate the complete test plan: flow paths (stuck-at-0), cut-sets
    // (stuck-at-1) and control-leakage vectors.
    let plan = Atpg::new().generate(&fpva)?;
    println!(
        "plan: {} flow paths + {} cut-sets + {} leakage vectors = {} test vectors",
        plan.flow_paths().len(),
        plan.cut_sets().len(),
        plan.leakage_paths().len(),
        plan.vector_count()
    );
    println!(
        "      (naive baseline would need {} vectors)",
        2 * fpva.valve_count()
    );

    // Apply the suite to two defective chips.
    let suite = plan.to_suite(&fpva);
    let broken_flow = FaultSet::try_from_faults(vec![Fault::StuckAt0(ValveId(42))])?;
    let leaking = FaultSet::try_from_faults(vec![Fault::StuckAt1(ValveId(99))])?;
    for (name, faults) in [
        ("stuck-at-0 at v42", &broken_flow),
        ("stuck-at-1 at v99", &leaking),
    ] {
        match suite.first_detecting_vector(&fpva, faults) {
            Some(i) => {
                let vec = &suite.vectors()[i];
                let faulty = respond(&fpva, vec, faults);
                println!(
                    "{name}: detected by vector #{i} (expected {:?}, read {:?})",
                    suite.expected()[i].readings(),
                    faulty.readings()
                );
            }
            None => println!("{name}: escaped the suite (!)"),
        }
    }
    Ok(())
}
