//! Testing a custom biochip layout: a chip with transportation channels,
//! an obstacle (e.g. an integrated sensor area) and multiple pressure
//! meters — the "incomplete array with fluidic-seas and obstacles" case
//! the paper's method is explicitly designed to handle.
//!
//! Run with `cargo run --release --example custom_biochip`.

use fpva::grid::layouts;
use fpva::grid::render::render;
use fpva::sim::audit;
use fpva::Atpg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12x12 chip: two transport channels feeding a work area, a 2x2
    // sensor block that carries no valves, one pressure source and two
    // meters on different edges. The layout lives in `layouts` so
    // `fpva-lint` audits exactly the chip this example runs.
    let fpva = layouts::custom_biochip();
    println!(
        "custom chip ({} valves):\n{}",
        fpva.valve_count(),
        render(&fpva)
    );

    let plan = Atpg::new().generate(&fpva)?;
    println!(
        "plan: n_p={} n_c={} n_l={} (N={})",
        plan.flow_paths().len(),
        plan.cut_sets().len(),
        plan.leakage_paths().len(),
        plan.vector_count()
    );
    if !plan.untestable_open().is_empty() {
        println!("untestable stuck-at-0: {:?}", plan.untestable_open());
    }
    if !plan.untestable_closed().is_empty() {
        // On this chip the second sink sits at the bottom-left corner:
        // every source→sinks cut must detour around the horizontal
        // channel, leaving the valves straddled by that detour without a
        // closable cut. The plan reports them rather than hiding them.
        println!(
            "untestable stuck-at-1 ({}): {:?}",
            plan.untestable_closed().len(),
            plan.untestable_closed()
        );
    }

    // Exhaustive single-fault audit: every stuck-at fault of every valve.
    let suite = plan.to_suite(&fpva);
    let report = audit::single_fault_coverage(&fpva, &suite);
    let coverage = report
        .coverage()
        .map_or_else(|| "n/a".to_string(), |c| format!("{:.1}%", 100.0 * c));
    println!(
        "single-fault audit: {}/{} detected ({coverage})",
        report.total - report.undetected.len(),
        report.total,
    );
    for fault in report.undetected.iter().take(5) {
        println!("  escaped: {fault}");
    }
    Ok(())
}
