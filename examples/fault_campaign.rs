//! The paper's Section IV evaluation in miniature: inject 1–5 random
//! manufacturing faults into the 15x15 benchmark array and count how many
//! fault sets the generated vectors detect.
//!
//! Run with `cargo run --release --example fault_campaign`.

use fpva::sim::campaign::{self, CampaignConfig};
use fpva::{layouts, Atpg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fpva = layouts::table1_15x15();
    let plan = Atpg::new().generate(&fpva)?;
    let suite = plan.to_suite(&fpva);
    println!(
        "15x15 array, {} valves, {} test vectors",
        fpva.valve_count(),
        suite.len()
    );

    let config = CampaignConfig {
        trials: 2_000, // the paper uses 10_000; see the fault_detection bench
        fault_counts: vec![1, 2, 3, 4, 5],
        threads: 0, // one worker per CPU; the rows do not depend on this
        ..Default::default()
    };
    println!(
        "{:>7} {:>10} {:>10} {:>9}",
        "faults", "trials", "detected", "rate"
    );
    for row in campaign::run(&fpva, &suite, &config) {
        let rate = row
            .detection_rate()
            .map_or_else(|| "n/a".to_string(), |r| format!("{:.2}%", 100.0 * r));
        println!(
            "{:>7} {:>10} {:>10} {:>9}",
            row.fault_count, row.trials, row.detected, rate
        );
        for escape in row.escapes.iter().take(2) {
            println!("        escape example: {:?}", escape.faults());
        }
    }
    Ok(())
}
