//! The hierarchical-vs-direct trade-off (the paper's Fig. 8 and the
//! motivation for Section III-B-4): compare path counts and generation
//! times of the hierarchical band engine and the direct greedy engine as
//! the array grows, and show the exact ILP on a subblock-sized array.
//!
//! Run with `cargo run --release --example hierarchical_scaling`.

use fpva::atpg::heuristic::greedy_cover;
use fpva::atpg::hierarchy::{hierarchical_cover, HierarchyConfig};
use fpva::atpg::ilp_model::{min_path_cover_ilp, PathIlpConfig};
use fpva::layouts;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} | {:>20} | {:>20}",
        "array", "hierarchical (5x5)", "greedy direct"
    );
    for n in [10usize, 15, 20, 25, 30] {
        let f = layouts::full_array(n, n);
        let t0 = Instant::now();
        let hier = hierarchical_cover(&f, &HierarchyConfig::default())?;
        let t_hier = t0.elapsed();
        let t0 = Instant::now();
        let greedy = greedy_cover(&f, 7, 64)?;
        let t_greedy = t0.elapsed();
        println!(
            "{n:>4}x{n} | {:>8} in {:>7.3}s | {:>8} in {:>7.3}s",
            hier.paths.len(),
            t_hier.as_secs_f64(),
            greedy.paths.len(),
            t_greedy.as_secs_f64()
        );
    }

    // The exact ILP (the paper's constraints (1)-(8)) at subblock scale.
    let f = layouts::full_array(3, 3);
    let t0 = Instant::now();
    let exact = min_path_cover_ilp(&f, &PathIlpConfig::default())?;
    println!(
        "\nexact ILP on 3x3: {} paths (provably minimal cover probe) in {:.3}s",
        exact.paths.len(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}
