//! # fpva — testing microfluidic fully programmable valve arrays
//!
//! A Rust reproduction of Liu, Li, Bhattacharya, Chakrabarty, Ho,
//! Schlichtmann, *"Testing Microfluidic Fully Programmable Valve Arrays
//! (FPVAs)"*, **DATE 2017** (arXiv:1705.04996).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`grid`] — the FPVA structural model (valve lattice, channels,
//!   obstacles, ports, test vectors, the Table I benchmark layouts),
//! * [`ilp`] — a self-contained MILP solver (two-phase simplex + branch
//!   and bound) standing in for the commercial ILP solver the paper used,
//! * [`sim`] — the behavioural chip simulator: pressure propagation,
//!   the stuck-at-0/1 and control-leak fault model, random fault
//!   campaigns, exhaustive coverage audits,
//! * [`atpg`] — the paper's contribution: flow-path, cut-set and
//!   control-leakage test-vector generation (ILP, greedy and hierarchical
//!   engines) plus the naive baseline.
//!
//! The most common entry points are re-exported at the crate root.
//!
//! # Example: generate and evaluate a test plan
//!
//! ```
//! use fpva::{Atpg, layouts};
//! use fpva::sim::campaign::{self, CampaignConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fpva = layouts::table1_5x5();
//! let plan = Atpg::new().generate(&fpva)?;
//! let suite = plan.to_suite(&fpva);
//!
//! // The Section IV experiment, scaled down, spread over two workers —
//! // the rows are byte-identical for every `threads` value.
//! let config = CampaignConfig { trials: 100, threads: 2, ..Default::default() };
//! for row in campaign::run(&fpva, &suite, &config) {
//!     assert!(row.all_detected(), "{} faults escaped", row.fault_count);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fpva_atpg as atpg;
pub use fpva_grid as grid;
pub use fpva_ilp as ilp;
pub use fpva_sim as sim;

pub use fpva_atpg::{Atpg, AtpgConfig, AtpgError, CutSet, FlowPath, TestPlan};
pub use fpva_grid::{layouts, Fpva, FpvaBuilder, GridError, TestVector, ValveId, ValveState};
pub use fpva_sim::{
    CampaignConfig, CampaignRow, ChipContext, CoverageReport, Fault, FaultSet, KernelStats,
    ObservableLeaks, SimKernel, TestSuite,
};
